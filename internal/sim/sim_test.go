package sim

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

// unitPlatform runs every task at rate 1.
func unitPlatform() Platform {
	return PlatformFunc(func(now float64, running []*Task) {
		for _, t := range running {
			t.SetRate(1)
		}
	})
}

func TestSingleTaskDuration(t *testing.T) {
	e := NewEngine(unitPlatform())
	s := e.NewStream("s", 0)
	task := e.NewTask("t", KindCompute, 2.5, nil, s)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !task.Done() {
		t.Fatal("task not done")
	}
	if task.Start() != 0 {
		t.Errorf("start = %g, want 0", task.Start())
	}
	if math.Abs(task.End()-2.5) > 1e-9 {
		t.Errorf("end = %g, want 2.5", task.End())
	}
	if e.Now() != task.End() {
		t.Errorf("engine now %g != task end %g", e.Now(), task.End())
	}
}

func TestStreamFIFO(t *testing.T) {
	e := NewEngine(unitPlatform())
	s := e.NewStream("s", 0)
	a := e.NewTask("a", KindCompute, 1, nil, s)
	b := e.NewTask("b", KindCompute, 1, nil, s)
	c := e.NewTask("c", KindCompute, 1, nil, s)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !(a.End() <= b.Start() && b.End() <= c.Start()) {
		t.Errorf("FIFO violated: a=[%g,%g] b=[%g,%g] c=[%g,%g]",
			a.Start(), a.End(), b.Start(), b.End(), c.Start(), c.End())
	}
	if c.End() != 3 {
		t.Errorf("c end = %g, want 3", c.End())
	}
}

func TestParallelStreams(t *testing.T) {
	e := NewEngine(unitPlatform())
	s1 := e.NewStream("s1", 0)
	s2 := e.NewStream("s2", 1)
	a := e.NewTask("a", KindCompute, 2, nil, s1)
	b := e.NewTask("b", KindCompute, 2, nil, s2)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if a.Start() != 0 || b.Start() != 0 {
		t.Errorf("tasks on independent streams should start together: %g, %g", a.Start(), b.Start())
	}
	if e.Now() != 2 {
		t.Errorf("parallel tasks should finish at 2, engine at %g", e.Now())
	}
}

func TestDependencyAcrossStreams(t *testing.T) {
	e := NewEngine(unitPlatform())
	s1 := e.NewStream("s1", 0)
	s2 := e.NewStream("s2", 1)
	a := e.NewTask("a", KindCompute, 1, nil, s1)
	b := e.NewTask("b", KindCompute, 1, nil, s2)
	b.After(a)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if b.Start() < a.End() {
		t.Errorf("b started at %g before a finished at %g", b.Start(), a.End())
	}
}

func TestRendezvousMultiStream(t *testing.T) {
	e := NewEngine(unitPlatform())
	s1 := e.NewStream("s1", 0)
	s2 := e.NewStream("s2", 1)
	a := e.NewTask("a", KindCompute, 3, nil, s1)
	// coll occupies both streams: it must wait for a (head of s1).
	coll := e.NewTask("coll", KindComm, 1, nil, s1, s2)
	b := e.NewTask("b", KindCompute, 1, nil, s2)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if coll.Start() < a.End() {
		t.Errorf("rendezvous started at %g before stream 1 head done at %g", coll.Start(), a.End())
	}
	if b.Start() < coll.End() {
		t.Errorf("b started %g before rendezvous finished %g", b.Start(), coll.End())
	}
}

func TestZeroWorkTask(t *testing.T) {
	e := NewEngine(unitPlatform())
	s := e.NewStream("s", 0)
	a := e.NewTask("a", KindHost, 0, nil, s)
	b := e.NewTask("b", KindCompute, 1, nil, s)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if a.End() != 0 {
		t.Errorf("zero-work task end = %g, want 0", a.End())
	}
	if b.End() != 1 {
		t.Errorf("b end = %g, want 1", b.End())
	}
}

func TestDeadlockCycleDetected(t *testing.T) {
	e := NewEngine(unitPlatform())
	s1 := e.NewStream("s1", 0)
	s2 := e.NewStream("s2", 1)
	a := e.NewTask("a", KindCompute, 1, nil, s1)
	b := e.NewTask("b", KindCompute, 1, nil, s2)
	a.After(b)
	b.After(a)
	err := e.Run()
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("want ErrDeadlock, got %v", err)
	}
}

func TestDeadlockAllStalled(t *testing.T) {
	e := NewEngine(PlatformFunc(func(now float64, running []*Task) {
		for _, t := range running {
			t.SetRate(0)
		}
	}))
	s := e.NewStream("s", 0)
	e.NewTask("t", KindCompute, 1, nil, s)
	if err := e.Run(); !errors.Is(err, ErrDeadlock) {
		t.Fatalf("want ErrDeadlock for all-stalled, got %v", err)
	}
}

func TestRateChangeMidTask(t *testing.T) {
	// Task b (work 1, rate 1) shares the platform with task a (work 1).
	// While both run, each runs at rate 0.5 (processor sharing); after a
	// finishes, b speeds back up.
	shared := PlatformFunc(func(now float64, running []*Task) {
		for _, t := range running {
			t.SetRate(1 / float64(len(running)))
		}
	})
	e := NewEngine(shared)
	s1 := e.NewStream("s1", 0)
	s2 := e.NewStream("s2", 1)
	a := e.NewTask("a", KindCompute, 1, nil, s1)
	b := e.NewTask("b", KindCompute, 2, nil, s2)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Both at 0.5 until a done at t=2 (a work 1 at 0.5). b then has 1 unit
	// left at rate 1 → ends at 3.
	if math.Abs(a.End()-2) > 1e-9 || math.Abs(b.End()-3) > 1e-9 {
		t.Errorf("a end %g (want 2), b end %g (want 3)", a.End(), b.End())
	}
}

func TestStalledTaskResumesWhenOthersRun(t *testing.T) {
	// A task stalled at rate 0 must not deadlock while another progresses,
	// and must resume when the platform raises its rate.
	var gate *Task
	plat := PlatformFunc(func(now float64, running []*Task) {
		for _, t := range running {
			if t == gate {
				// Stalled until its neighbor finishes.
				if len(running) > 1 {
					t.SetRate(0)
				} else {
					t.SetRate(1)
				}
				continue
			}
			t.SetRate(1)
		}
	})
	e := NewEngine(plat)
	s1 := e.NewStream("s1", 0)
	s2 := e.NewStream("s2", 1)
	a := e.NewTask("a", KindCompute, 2, nil, s1)
	gate = e.NewTask("gated", KindComm, 1, nil, s2)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(gate.End()-3) > 1e-9 {
		t.Errorf("gated end %g, want 3 (stalled 2s then 1s of work)", gate.End())
	}
	_ = a
}

func TestObserverSegmentsCoverRun(t *testing.T) {
	e := NewEngine(unitPlatform())
	s := e.NewStream("s", 0)
	e.NewTask("a", KindCompute, 1.5, nil, s)
	e.NewTask("b", KindCompute, 0.5, nil, s)
	var covered float64
	var last float64
	e.AddObserver(ObserverFunc(func(t0, t1 float64, running []*Task) {
		if t0 < last-1e-12 {
			t.Errorf("segments out of order: t0=%g after %g", t0, last)
		}
		covered += t1 - t0
		last = t1
	}))
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(covered-2) > 1e-9 {
		t.Errorf("observer covered %g, want 2", covered)
	}
}

func TestOnDoneCallbackAndDynamicTask(t *testing.T) {
	e := NewEngine(unitPlatform())
	s := e.NewStream("s", 0)
	var spawned *Task
	a := e.NewTask("a", KindCompute, 1, nil, s)
	a.OnDone(func(now float64) {
		spawned = e.NewTask("spawned", KindCompute, 1, nil, s)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if spawned == nil || !spawned.Done() {
		t.Fatal("dynamically spawned task did not complete")
	}
	if spawned.Start() < a.End() {
		t.Errorf("spawned started %g before parent end %g", spawned.Start(), a.End())
	}
}

func TestAfterCompletedDependencyIgnored(t *testing.T) {
	e := NewEngine(unitPlatform())
	s := e.NewStream("s", 0)
	a := e.NewTask("a", KindCompute, 1, nil, s)
	a.OnDone(func(now float64) {
		b := e.NewTask("b", KindCompute, 1, nil, s)
		b.After(a) // already done; must not block
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestInvalidWorkPanics(t *testing.T) {
	e := NewEngine(unitPlatform())
	s := e.NewStream("s", 0)
	for _, w := range []float64{-1, math.NaN(), math.Inf(1)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("work %v: expected panic", w)
				}
			}()
			e.NewTask("bad", KindCompute, w, nil, s)
		}()
	}
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{KindCompute: "compute", KindComm: "comm", KindHost: "host", Kind(9): "kind(9)"}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(k), got, want)
		}
	}
}

// Property: for a chain of sequential tasks at unit rate, total time equals
// total work, regardless of the split.
func TestQuickSequentialWorkConservation(t *testing.T) {
	f := func(works []uint8) bool {
		if len(works) == 0 || len(works) > 50 {
			return true
		}
		e := NewEngine(unitPlatform())
		s := e.NewStream("s", 0)
		total := 0.0
		for i, w := range works {
			work := float64(w%100) / 10
			total += work
			e.NewTask(name(i), KindCompute, work, nil, s)
		}
		if err := e.Run(); err != nil {
			return false
		}
		return math.Abs(e.Now()-total) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: with K independent streams each holding one task of work w at
// unit rate, the makespan is max(w).
func TestQuickParallelMakespan(t *testing.T) {
	f := func(works []uint8) bool {
		if len(works) == 0 || len(works) > 20 {
			return true
		}
		e := NewEngine(unitPlatform())
		maxW := 0.0
		for i, w := range works {
			work := float64(w)/16 + 0.01
			if work > maxW {
				maxW = work
			}
			s := e.NewStream(name(i), i)
			e.NewTask(name(i), KindCompute, work, nil, s)
		}
		if err := e.Run(); err != nil {
			return false
		}
		return math.Abs(e.Now()-maxW) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func name(i int) string { return string(rune('a' + i%26)) }
