package service

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// adviseQuery is a small advisor query with a real trade-off: the
// power-cap axis trades iteration time against power and energy.
const adviseQuery = `{
	"name": "api-advise",
	"spec": {
		"gpus": ["A100"],
		"models": ["GPT-3 XL"],
		"power_caps_w": [100, 200, 300, 400, 0]
	},
	"objectives": ["time_per_iter_s", "energy_per_iter_j", "avg_power_w"],
	"minimize": "energy_per_iter_j",
	"seed_evals": 3
}`

func waitForAdvise(t *testing.T, ts *httptest.Server, id string) jobBody {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/advise/" + id)
		if err != nil {
			t.Fatal(err)
		}
		body := decode[jobBody](t, resp, http.StatusOK)
		if body.Status != statusRunning {
			return body
		}
		if time.Now().After(deadline) {
			t.Fatalf("advise %s still running: %+v", id, body)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestAdviseJobLifecycle(t *testing.T) {
	_, ts := newTestServer(t)

	resp, err := http.Post(ts.URL+"/v1/advise", "application/json", strings.NewReader(adviseQuery))
	if err != nil {
		t.Fatal(err)
	}
	sub := decode[submitBody](t, resp, http.StatusAccepted)
	if sub.ID == "" || !strings.HasPrefix(sub.ID, "advise-") || sub.Points != 5 {
		t.Fatalf("submit response %+v", sub)
	}

	body := waitForAdvise(t, ts, sub.ID)
	if body.Status != statusDone {
		t.Fatalf("job finished as %q: %+v", body.Status, body)
	}
	if body.Kind != kindAdvise {
		t.Errorf("job kind %q", body.Kind)
	}
	if body.Advice == nil {
		t.Fatal("done advise job carries no advice")
	}
	adv := body.Advice
	if len(adv.Frontier.Points) == 0 || adv.Recommended == nil {
		t.Fatalf("advice has %d frontier points, recommended %v", len(adv.Frontier.Points), adv.Recommended)
	}
	if adv.Stats.Evaluated == 0 || body.Completed != adv.Stats.Evaluated {
		t.Errorf("progress %d vs evaluated %d", body.Completed, adv.Stats.Evaluated)
	}
	// The recommendation minimizes energy: no frontier point beats it.
	energyIdx := 1
	for _, p := range adv.Frontier.Points {
		if p.Values[energyIdx] < adv.Recommended.Values[energyIdx] {
			t.Errorf("frontier point %s (%.1f J) beats recommendation %s (%.1f J)",
				p.Label, p.Values[energyIdx], adv.Recommended.Label, adv.Recommended.Values[energyIdx])
		}
	}

	// Resubmitting the identical query is served fully from the shared
	// cache and returns an identical frontier.
	resp, err = http.Post(ts.URL+"/v1/advise", "application/json", strings.NewReader(adviseQuery))
	if err != nil {
		t.Fatal(err)
	}
	sub2 := decode[submitBody](t, resp, http.StatusAccepted)
	warm := waitForAdvise(t, ts, sub2.ID)
	if warm.Status != statusDone || warm.Advice == nil {
		t.Fatalf("warm job: %+v", warm)
	}
	if warm.Advice.Stats.FreshEvals != 0 {
		t.Errorf("warm advise simulated %d fresh configs, want 0", warm.Advice.Stats.FreshEvals)
	}
	if len(warm.Advice.Frontier.Points) != len(adv.Frontier.Points) {
		t.Errorf("warm frontier has %d points, cold had %d",
			len(warm.Advice.Frontier.Points), len(adv.Frontier.Points))
	}
	for i, p := range warm.Advice.Frontier.Points {
		if p.Key != adv.Frontier.Points[i].Key {
			t.Errorf("warm frontier point %d key %s, cold %s", i, p.Key, adv.Frontier.Points[i].Key)
		}
	}

	// Advise jobs list under /v1/advise only; sweeps stay empty.
	resp, err = http.Get(ts.URL + "/v1/advise")
	if err != nil {
		t.Fatal(err)
	}
	list := decode[map[string][]jobBody](t, resp, http.StatusOK)
	if len(list["advise_jobs"]) != 2 {
		t.Errorf("listed %d advise jobs, want 2", len(list["advise_jobs"]))
	}
	resp, err = http.Get(ts.URL + "/v1/sweeps")
	if err != nil {
		t.Fatal(err)
	}
	sweeps := decode[map[string][]jobBody](t, resp, http.StatusOK)
	if len(sweeps["sweeps"]) != 0 {
		t.Errorf("advise jobs leaked into the sweep listing: %+v", sweeps["sweeps"])
	}

	// Kinds do not cross-resolve: an advise id is not a sweep.
	resp, err = http.Get(ts.URL + "/v1/sweeps/" + sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	decode[errorBody](t, resp, http.StatusNotFound)

	// DELETE on the finished job forgets it.
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/advise/"+sub.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	decode[jobBody](t, resp, http.StatusOK)
	resp, err = http.Get(ts.URL + "/v1/advise/" + sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	decode[errorBody](t, resp, http.StatusNotFound)
}

func TestAdviseValidation(t *testing.T) {
	_, ts := newTestServer(t)
	bad := []string{
		`{"spec":{"models":["GPT-3 XL"]}}`,                                                                        // no platform axis
		`{"spec":{"gpus":["A100"],"models":["GPT-3 XL"]},"objectives":["nope"]}`,                                  // unknown objective
		`{"spec":{"gpus":["A100"],"models":["GPT-3 XL"]},"objektives":["x"]}`,                                     // unknown field
		`{"spec":{"gpus":["A100"],"models":["GPT-3 XL"]},"minimize":"peak_power_w","objectives":["avg_power_w"]}`, // minimize not listed
	}
	for _, q := range bad {
		resp, err := http.Post(ts.URL+"/v1/advise", "application/json", strings.NewReader(q))
		if err != nil {
			t.Fatal(err)
		}
		decode[errorBody](t, resp, http.StatusBadRequest)
	}

	// Oversized spaces are rejected arithmetically.
	srv := New(Options{MaxSweepPoints: 2})
	small := httptest.NewServer(srv)
	defer small.Close()
	defer srv.Close()
	resp, err := http.Post(small.URL+"/v1/advise", "application/json",
		strings.NewReader(`{"spec":{"gpus":["A100"],"models":["GPT-3 XL"],"batches":[8,16,32]}}`))
	if err != nil {
		t.Fatal(err)
	}
	decode[errorBody](t, resp, http.StatusRequestEntityTooLarge)
}

func TestCatalogServesObjectives(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/catalog")
	if err != nil {
		t.Fatal(err)
	}
	body := decode[catalogBody](t, resp, http.StatusOK)
	want := map[string]bool{"time_per_iter_s": false, "energy_per_iter_j": false, "avg_power_w": false}
	for _, name := range body.Objectives {
		if _, ok := want[name]; ok {
			want[name] = true
		}
	}
	for name, got := range want {
		if !got {
			t.Errorf("catalog misses objective %s (have %v)", name, body.Objectives)
		}
	}
}
