package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runLint invokes run() from inside dir with stdout and stderr captured.
func runLint(t *testing.T, dir string, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Chdir(abs)
	outPath := filepath.Join(t.TempDir(), "stdout")
	errPath := filepath.Join(t.TempDir(), "stderr")
	outF, err := os.Create(outPath)
	if err != nil {
		t.Fatal(err)
	}
	defer outF.Close()
	errF, err := os.Create(errPath)
	if err != nil {
		t.Fatal(err)
	}
	defer errF.Close()
	code = run(args, outF, errF)
	outB, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	errB, err := os.ReadFile(errPath)
	if err != nil {
		t.Fatal(err)
	}
	return code, string(outB), string(errB)
}

const fixture = "testdata/fixture"

// TestFixtureFindings runs the full multichecker over the fixture
// module: the deliberate panic and dropped context must be reported and
// the exit status must be 1.
func TestFixtureFindings(t *testing.T) {
	code, stdout, stderr := runLint(t, fixture, "./...")
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	for _, want := range []string{
		"lib.go:8:2: nopanic: panic in a library package",
		"lib.go:11:14: ctxflow: exported Dropped never uses its context parameter",
	} {
		if !strings.Contains(stdout, want) {
			t.Errorf("stdout missing %q:\n%s", want, stdout)
		}
	}
	if !strings.Contains(stderr, "2 finding(s)") {
		t.Errorf("stderr = %q, want a finding count", stderr)
	}
}

// TestFixtureCleanSubset selects only the analyzers that have nothing
// to say about the fixture: exit 0 and no output.
func TestFixtureCleanSubset(t *testing.T) {
	code, stdout, stderr := runLint(t, fixture, "-run", "simdeterminism,fingerprintstable,metriclabels", "./...")
	if code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if stdout != "" {
		t.Errorf("stdout = %q, want empty", stdout)
	}
}

// TestFixtureJSON checks the machine-readable output shape.
func TestFixtureJSON(t *testing.T) {
	code, stdout, _ := runLint(t, fixture, "-json", "./...")
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	var findings []struct {
		Analyzer string `json:"analyzer"`
		Position string `json:"position"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal([]byte(stdout), &findings); err != nil {
		t.Fatalf("output is not a JSON array: %v\n%s", err, stdout)
	}
	if len(findings) != 2 {
		t.Fatalf("got %d findings, want 2: %v", len(findings), findings)
	}
	if findings[0].Analyzer != "ctxflow" && findings[0].Analyzer != "nopanic" {
		t.Errorf("unexpected analyzer %q", findings[0].Analyzer)
	}
}

// TestUnknownAnalyzer is a usage error: exit 2.
func TestUnknownAnalyzer(t *testing.T) {
	code, _, stderr := runLint(t, fixture, "-run", "nosuch", "./...")
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(stderr, "unknown analyzer") {
		t.Errorf("stderr = %q, want unknown-analyzer message", stderr)
	}
}

// TestList prints the analyzer names.
func TestList(t *testing.T) {
	code, stdout, _ := runLint(t, fixture, "-list")
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	names := strings.Fields(stdout)
	want := []string{"simdeterminism", "fingerprintstable", "nopanic", "ctxflow", "metriclabels"}
	if len(names) != len(want) {
		t.Fatalf("listed %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("analyzer %d = %q, want %q", i, names[i], want[i])
		}
	}
}
