package calib

import "overlapsim/internal/telemetry"

// Process-wide calibration instrumentation, registered on the default
// telemetry registry. Counters are cumulative over the process; per-run
// provenance stays in Fitted.Notes and Report.
var (
	mFits = telemetry.Default.CounterVec("calib_fits_total",
		"Calibration fits attempted, by outcome: ok or error.",
		"outcome")
	mValidations = telemetry.Default.CounterVec("calib_validations_total",
		"Calibration validation runs, by outcome: ok or error.",
		"outcome")
)

// fitOutcome is the closed vocabulary of one fit or validation's fate.
type fitOutcome string

const (
	outcomeOK    fitOutcome = "ok"
	outcomeError fitOutcome = "error"
)

func recordFit(outcome fitOutcome)      { mFits.With(string(outcome)).Inc() }
func recordValidate(outcome fitOutcome) { mValidations.With(string(outcome)).Inc() }
