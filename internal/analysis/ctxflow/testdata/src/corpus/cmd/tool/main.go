// Command tool is package main: minting root contexts here is exactly
// where they belong, so ctxflow stays silent.
package main

import "context"

func main() {
	ctx := context.Background()
	_ = ctx
}
