package service

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"strconv"
	"strings"
	"time"

	"overlapsim/internal/opt"
	"overlapsim/internal/report"
	"overlapsim/internal/store"
	"overlapsim/internal/sweep"
)

// The durable job store: with Options.Journal set, every submission and
// every terminal transition is appended to the journal, so a restarted
// overlapd (same -state-dir) lists finished jobs with their results and
// resumes interrupted ones. A resume re-runs the job's spec through the
// shared cache — against a durable cache tier every point that
// completed before the interruption is a hit, so only the uncached
// remainder simulates, and the canonical result is byte-identical to an
// uninterrupted run.

// journalSubmit records a job submission (no-op without a journal).
func (s *Server) journalSubmit(j *job, rawSpec []byte) {
	if s.opts.Journal == nil {
		return
	}
	rec := store.Record{
		Op: store.OpSubmit, Kind: string(j.kind), ID: j.id, Name: j.name,
		Time: j.started, Total: j.total, Spec: json.RawMessage(rawSpec),
	}
	if err := s.opts.Journal.Append(rec); err != nil {
		s.log.Warn("journal submit failed", slog.String("job", j.id), slog.Any("err", err))
	}
}

// journalFinish records a job's terminal transition (no-op without a
// journal). A cancellation caused by server shutdown is deliberately
// NOT recorded: the submit record is left unterminated, which is
// exactly the resume signal the next start looks for. A user-requested
// cancellation (DELETE on a live server) is terminal and recorded.
func (s *Server) journalFinish(j *job, status jobStatus, result any, errMsg string) {
	if s.opts.Journal == nil {
		return
	}
	if status == statusCancelled && s.ctx.Err() != nil {
		return
	}
	rec := store.Record{
		Op: store.OpFinish, Kind: string(j.kind), ID: j.id,
		Time: time.Now(), Status: string(status), Error: errMsg,
	}
	if status == statusDone && result != nil {
		b, err := json.Marshal(result)
		if err != nil {
			s.log.Warn("journal finish: encoding result", slog.String("job", j.id), slog.Any("err", err))
		} else {
			rec.Result = b
		}
	}
	if err := s.opts.Journal.Append(rec); err != nil {
		s.log.Warn("journal finish failed", slog.String("job", j.id), slog.Any("err", err))
	}
}

// recoverJobs rebuilds the job table from the journal at startup:
// finished jobs are re-registered with their recorded results, and
// submissions with no terminal record — jobs a previous process died
// holding — are resumed. Called from New, before the server accepts
// requests.
func (s *Server) recoverJobs() {
	recs := s.opts.Journal.Records()
	finishes := make(map[string]*store.Record, len(recs))
	for i := range recs {
		if recs[i].Op == store.OpFinish {
			finishes[recs[i].ID] = &recs[i]
		}
	}
	maxID := 0
	for i := range recs {
		rec := &recs[i]
		if rec.Op != store.OpSubmit {
			continue
		}
		if n := idNumber(rec.ID); n > maxID {
			maxID = n
		}
		if fin := finishes[rec.ID]; fin != nil {
			s.recoverFinished(rec, fin)
		} else {
			s.resume(rec)
		}
	}
	// Fresh ids continue after every journaled one, recovered or not, so
	// an id never names two different jobs across restarts.
	s.mu.Lock()
	if s.nextID < maxID {
		s.nextID = maxID
	}
	s.mu.Unlock()
}

// idNumber extracts the numeric suffix of a job id ("sweep-000042"),
// or 0.
func idNumber(id string) int {
	i := strings.LastIndexByte(id, '-')
	if i < 0 {
		return 0
	}
	n, err := strconv.Atoi(id[i+1:])
	if err != nil || n < 0 {
		return 0
	}
	return n
}

// recoverFinished registers a terminal job from its journal records,
// decoding the stored result so status and result polls serve it
// exactly as before the restart.
func (s *Server) recoverFinished(sub, fin *store.Record) {
	j := &job{
		id:      sub.ID,
		kind:    jobKind(sub.Kind),
		name:    sub.Name,
		total:   sub.Total,
		started: sub.Time,
		cancel:  func() {},
		status:  jobStatus(fin.Status),
		errMsg:  fin.Error,
	}
	switch {
	case j.kind == kindSweep && len(fin.Result) > 0:
		var res sweep.Result
		if err := json.Unmarshal(fin.Result, &res); err != nil {
			s.log.Warn("recover: decoding sweep result", slog.String("job", j.id), slog.Any("err", err))
			break
		}
		j.res = &res
		j.aggregate = report.AggregateSweep(sweep.Rows(&res)).String()
		j.completed = len(res.Points)
		j.hits = res.CacheHits
		j.coalesced = res.Coalesced
		j.ooms = res.OOMs
		j.failures = res.Failures
	case j.kind == kindAdvise && len(fin.Result) > 0:
		var adv opt.Advice
		if err := json.Unmarshal(fin.Result, &adv); err != nil {
			s.log.Warn("recover: decoding advice", slog.String("job", j.id), slog.Any("err", err))
			break
		}
		j.advice = &adv
		j.completed = adv.Stats.Evaluated
		j.hits = adv.Stats.CacheHits
		j.ooms = adv.Stats.OOMs
		j.failures = adv.Stats.Failures
	}
	s.mu.Lock()
	s.jobs[j.id] = j
	s.evictLocked()
	s.mu.Unlock()
	s.log.Info("job recovered",
		slog.String("job", j.id), slog.String("status", string(j.status)))
}

// resume relaunches an interrupted job from its journaled spec. The
// job keeps its id; its grid re-runs through the shared cache, so
// previously completed points are hits and only the remainder
// simulates. A spec that no longer resolves (a registry the new build
// dropped) surfaces as a failed job rather than a silent disappearance.
func (s *Server) resume(sub *store.Record) {
	kind := jobKind(sub.Kind)
	switch kind {
	case kindSweep:
		spec, err := sweep.ParseSpec(bytes.NewReader(sub.Spec))
		if err != nil {
			s.recoverFailed(sub, "resume: "+err.Error())
			return
		}
		_, cfgs, err := spec.Expand()
		if err != nil {
			s.recoverFailed(sub, "resume: "+err.Error())
			return
		}
		s.mu.Lock()
		j := s.registerLocked(sub.ID, kind, sub.Name, len(cfgs), sub.Time)
		s.mu.Unlock()
		s.log.Info("job resumed", slog.String("job", j.id), slog.Int("points", len(cfgs)))
		s.launchSweep(j, spec.Name, cfgs)
	case kindAdvise:
		q, err := opt.ParseQuery(bytes.NewReader(sub.Spec))
		if err != nil {
			s.recoverFailed(sub, "resume: "+err.Error())
			return
		}
		space, err := q.Space()
		if err != nil {
			s.recoverFailed(sub, "resume: "+err.Error())
			return
		}
		s.mu.Lock()
		j := s.registerLocked(sub.ID, kind, sub.Name, len(space.Cands), sub.Time)
		s.mu.Unlock()
		s.log.Info("job resumed", slog.String("job", j.id), slog.Int("candidates", len(space.Cands)))
		s.launchAdvise(j, q, space)
	default:
		s.log.Warn("recover: unknown job kind",
			slog.String("job", sub.ID), slog.String("kind", sub.Kind))
	}
}

// recoverFailed registers an interrupted job whose spec no longer
// resolves as failed, and journals the terminal state so the next
// restart does not retry it forever.
func (s *Server) recoverFailed(sub *store.Record, msg string) {
	j := &job{
		id: sub.ID, kind: jobKind(sub.Kind), name: sub.Name,
		total: sub.Total, started: sub.Time,
		cancel: func() {}, status: statusFailed, errMsg: msg,
	}
	s.mu.Lock()
	s.jobs[j.id] = j
	s.mu.Unlock()
	s.log.Warn("job resume failed", slog.String("job", j.id), slog.String("err", msg))
	s.journalFinish(j, statusFailed, nil, msg)
}
