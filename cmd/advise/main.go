// Command advise answers the paper's trade-off question from the
// command line: given a search space (a sweep spec), objectives and
// constraints, it searches for the Pareto frontier of (iteration time,
// energy/iteration, board power, ...) and prints the frontier plus one
// recommended configuration. Evaluations run through the sweep caches,
// so repeated or overlapping queries against a -cache directory are
// near-free.
//
// -validate parses and resolves the query — objectives, constraints,
// space axes and registry names — without running anything; CI
// validates every example query this way. -hw-file loads user-defined
// GPUs and systems first, so custom hardware names work in queries.
//
// Example:
//
//	advise -query examples/advisor/ddp_fsdp_tp_350w.json -cache .sweepcache
//	advise -validate -query examples/advisor/powercap_frontier.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"syscall"

	"overlapsim/internal/hw"
	"overlapsim/internal/opt"
	"overlapsim/internal/report"
	"overlapsim/internal/store"
	"overlapsim/internal/sweep"
	"overlapsim/internal/telemetry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("advise: ")

	var (
		queryPath = flag.String("query", "", `advisor query JSON file ("-" reads stdin)`)
		hwFile    = flag.String("hw-file", "", "load custom GPUs/systems from this JSON file before resolving the query")
		validate  = flag.Bool("validate", false, "parse and validate the query (objectives, axes, names) without running it")
		cacheDir  = flag.String("cache", "", "content-addressed cache directory (empty = in-memory only)")
		peers     = flag.String("peers", "", "comma-separated overlapd base URLs to use as a shared result cache (read-through and write-back)")
		workers   = flag.Int("workers", 0, "concurrent simulations per search round (0 = NumCPU)")
		csvPath   = flag.String("csv", "", "also write the frontier as CSV to this file")
		jsonPath  = flag.String("json", "", `also write the advice as JSON to this file ("-" writes stdout)`)
		quiet     = flag.Bool("q", false, "suppress the frontier table (recommendation and stats only)")
		showTel   = flag.Bool("telemetry", false, "print the process telemetry (Prometheus text format) after the search")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: advise -query <query.json> [flags]\n\n")
		flag.PrintDefaults()
		fmt.Fprintf(flag.CommandLine.Output(), `
example queries:
  examples/advisor/ddp_fsdp_tp_350w.json   DDP vs FSDP vs TP under a 350 W cap on 4x8 H100
  examples/advisor/powercap_frontier.json  the A100 power-cap time/energy frontier
  examples/advisor/smoke.json              tiny space (CI determinism smoke)

objectives: %v
`, opt.Names())
	}
	flag.Parse()
	if *queryPath == "" {
		flag.Usage()
		log.Fatal("missing -query")
	}
	if *hwFile != "" {
		if err := hw.LoadFile(*hwFile); err != nil {
			log.Fatal(err)
		}
	}

	var in io.Reader = os.Stdin
	if *queryPath != "-" {
		f, err := os.Open(*queryPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		in = f
	}
	q, err := opt.ParseQuery(in)
	if err != nil {
		log.Fatal(err)
	}

	if *validate {
		n, err := q.Validate()
		if err != nil {
			log.Fatalf("invalid query: %v", err)
		}
		fmt.Printf("query %q ok: %d candidate configurations\n", q.Name, n)
		return
	}

	cache, err := store.Compose(*cacheDir, *peers)
	if err != nil {
		log.Fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	advisor := &opt.Advisor{Runner: &sweep.Runner{Workers: *workers, Cache: cache}}
	adv, err := advisor.Run(ctx, q)
	if err != nil {
		log.Fatalf("advise aborted: %v", err)
	}

	if !*quiet {
		if err := report.FrontierTable(os.Stdout, adv.Frontier.Rows(), adv.RecommendedIndex()); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
	if adv.Recommended != nil {
		fmt.Printf("recommended: %s\n", adv.Recommended.Label)
		for i, o := range adv.Frontier.Objectives {
			fmt.Printf("  %-18s %.4g %s\n", o.Name, adv.Recommended.Values[i], o.Unit)
		}
	} else {
		fmt.Printf("no recommendation: %s\n", adv.Note)
	}
	st := adv.Stats
	fmt.Printf("frontier: %d points; space %d unique of %d grid; evaluated %d (%d fresh, %d cached) in %d rounds; elapsed %s\n",
		len(adv.Frontier.Points), st.SpaceSize, st.GridPoints,
		st.Evaluated, st.FreshEvals, st.CacheHits, st.Rounds, st.Elapsed.Round(1e6))
	if st.OOMs > 0 || st.Failures > 0 || st.Infeasible > 0 {
		fmt.Printf("excluded: %d OOM, %d failed, %d constraint-infeasible\n", st.OOMs, st.Failures, st.Infeasible)
	}
	if *showTel {
		fmt.Println()
		if err := telemetry.Default.WriteText(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := report.FrontierCSV(f, adv.Frontier.Rows(), adv.RecommendedIndex()); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	}
	if *jsonPath != "" {
		out := os.Stdout
		if *jsonPath != "-" {
			f, err := os.Create(*jsonPath)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			out = f
		}
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(adv); err != nil {
			log.Fatal(err)
		}
	}
}
