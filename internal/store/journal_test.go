package store

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func crcOf(b []byte) uint32 { return crc32.ChecksumIEEE(b) }

func journalRecord(i int) Record {
	op := OpSubmit
	if i%2 == 1 {
		op = OpFinish
	}
	return Record{
		Op: op, Kind: "sweep", ID: fmt.Sprintf("sweep-%06d", i),
		Time: time.Unix(1700000000+int64(i), 0).UTC(),
		Spec: json.RawMessage(`{"GPUs":["H100"]}`),
	}
}

func openTestJournal(t *testing.T, path string) *Journal {
	t.Helper()
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j.Close() })
	return j
}

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.journal")
	j := openTestJournal(t, path)
	for i := 0; i < 5; i++ {
		if err := j.Append(journalRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2 := openTestJournal(t, path)
	recs := j2.Records()
	if len(recs) != 5 {
		t.Fatalf("recovered %d records, want 5", len(recs))
	}
	for i, rec := range recs {
		want := journalRecord(i)
		if rec.Op != want.Op || rec.ID != want.ID || !rec.Time.Equal(want.Time) {
			t.Errorf("record %d = %+v, want %+v", i, rec, want)
		}
	}
	if j2.SkippedBytes() != 0 {
		t.Errorf("clean journal reported %d skipped bytes", j2.SkippedBytes())
	}
}

// A process killed mid-append leaves a torn final line. The next open
// recovers every intact record, truncates the tail, and appends cleanly
// after it.
func TestJournalRecoversFromTornTail(t *testing.T) {
	tears := map[string]func(line string) string{
		"cut mid-payload":  func(line string) string { return line[:len(line)-len(line)/2] },
		"missing newline":  func(line string) string { return line[:len(line)-1] },
		"corrupt checksum": func(line string) string { return "00000000" + line[8:] },
		"garbage":          func(string) string { return "not a journal line\n" },
	}
	for name, tear := range tears {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "jobs.journal")
			j := openTestJournal(t, path)
			for i := 0; i < 3; i++ {
				if err := j.Append(journalRecord(i)); err != nil {
					t.Fatal(err)
				}
			}
			j.Close()

			// Tear the final record as an interrupted append would.
			b, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			recs := j.Records()
			payload, _ := json.Marshal(recs[len(recs)-1])
			lastLine := fmt.Sprintf("%08x %s\n", crcOf(payload), payload)
			intact := b[:len(b)-len(lastLine)]
			torn := append(append([]byte(nil), intact...), tear(lastLine)...)
			if err := os.WriteFile(path, torn, 0o644); err != nil {
				t.Fatal(err)
			}

			j2 := openTestJournal(t, path)
			if got := len(j2.Records()); got != 2 {
				t.Fatalf("recovered %d records from torn journal, want 2", got)
			}
			if j2.SkippedBytes() == 0 {
				t.Error("torn tail not reported in SkippedBytes")
			}
			// The journal must now extend the clean prefix.
			if err := j2.Append(journalRecord(9)); err != nil {
				t.Fatal(err)
			}
			j2.Close()
			j3 := openTestJournal(t, path)
			recs3 := j3.Records()
			if len(recs3) != 3 || recs3[2].ID != journalRecord(9).ID {
				t.Errorf("after post-tear append, recovered %+v", recs3)
			}
		})
	}
}

func TestJournalAppendAfterCloseFails(t *testing.T) {
	j := openTestJournal(t, filepath.Join(t.TempDir(), "jobs.journal"))
	j.Close()
	if err := j.Append(journalRecord(0)); err == nil {
		t.Error("Append on a closed journal returned nil error")
	}
}

// FuzzJournal drives random interleavings of appends, external file
// truncations (simulated crashes) and reloads. Invariants: OpenJournal
// never fails on any mangled file, and every recovered record is the
// verbatim content of some earlier append in order — torn or truncated
// records are cleanly skipped, never resurrected as phantoms.
func FuzzJournal(f *testing.F) {
	f.Add([]byte{'a', 'a', 'r'})
	f.Add([]byte{'a', 't', 0x03, 'a', 'r'})
	f.Add([]byte{'a', 'a', 't', 0xff, 'r', 'a', 't', 0x00, 'r'})
	f.Fuzz(func(t *testing.T, ops []byte) {
		path := filepath.Join(t.TempDir(), "jobs.journal")
		j, err := OpenJournal(path)
		if err != nil {
			t.Fatalf("initial open: %v", err)
		}
		defer func() { j.Close() }()

		appended := make(map[string]Record) // ID -> record, as written
		var order []string                  // append order
		seq := 0

		check := func() {
			recovered := j.Records()
			// Recovered IDs must be a subsequence of the append order: no
			// phantom records, no reordering.
			next := 0
			for _, rec := range recovered {
				want, ok := appended[rec.ID]
				if !ok {
					t.Fatalf("phantom record %+v", rec)
				}
				if rec.Op != want.Op || !rec.Time.Equal(want.Time) || string(rec.Spec) != string(want.Spec) {
					t.Fatalf("record %s mutated: got %+v, want %+v", rec.ID, rec, want)
				}
				for next < len(order) && order[next] != rec.ID {
					next++
				}
				if next == len(order) {
					t.Fatalf("recovered records out of append order: %s", rec.ID)
				}
				next++
			}
		}

		for i := 0; i < len(ops); i++ {
			switch ops[i] % 3 {
			case 0: // append
				rec := journalRecord(seq)
				rec.ID = fmt.Sprintf("fuzz-%06d", seq)
				seq++
				if err := j.Append(rec); err == nil {
					appended[rec.ID] = rec
					order = append(order, rec.ID)
				}
			case 1: // crash: truncate the file at an arbitrary offset
				i++
				if i >= len(ops) {
					break
				}
				j.Close()
				if fi, err := os.Stat(path); err == nil && fi.Size() > 0 {
					cut := fi.Size() * int64(ops[i]) / 255
					if err := os.Truncate(path, cut); err != nil {
						t.Fatal(err)
					}
				}
				if j, err = OpenJournal(path); err != nil {
					t.Fatalf("reopen after truncate: %v", err)
				}
				check()
			case 2: // clean reload
				j.Close()
				if j, err = OpenJournal(path); err != nil {
					t.Fatalf("reopen: %v", err)
				}
				check()
			}
		}
	})
}
