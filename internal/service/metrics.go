package service

import "overlapsim/internal/telemetry"

// Process-wide server instrumentation on the default telemetry
// registry, served back by this same server's GET /metrics.
var (
	mRequests = telemetry.Default.CounterVec("overlapd_http_requests_total",
		"HTTP requests served, by route pattern and status code.",
		"route", "code")
	mDuration = telemetry.Default.HistogramVec("overlapd_http_request_duration_seconds",
		"HTTP request latency by route pattern.",
		nil, "route")
	mInFlight = telemetry.Default.Gauge("overlapd_http_in_flight_requests",
		"HTTP requests currently being served.")

	mJobsRunning = telemetry.Default.GaugeVec("overlapd_jobs_running",
		"Asynchronous jobs currently running, by kind.",
		"kind")
	mJobsDone = telemetry.Default.CounterVec("overlapd_jobs_total",
		"Asynchronous jobs finished, by kind and terminal status.",
		"kind", "status")
	mJobsEvicted = telemetry.Default.Counter("overlapd_jobs_evicted_total",
		"Finished jobs dropped by the retention cap.")
)

// noteJobStarted and noteJobFinished keep the job gauges in step with
// the job lifecycle; every started job finishes in exactly one terminal
// status.
func noteJobStarted(kind jobKind) {
	mJobsRunning.With(string(kind)).Inc()
}

func noteJobFinished(kind jobKind, status jobStatus) {
	mJobsRunning.With(string(kind)).Dec()
	mJobsDone.With(string(kind), string(status)).Inc()
}
