package hw

import (
	"strings"
	"testing"
)

func TestGPURegistryServesBuiltins(t *testing.T) {
	names := Names()
	for i, want := range []string{"A100", "H100", "MI210", "MI250"} {
		if i >= len(names) || names[i] != want {
			t.Fatalf("Names() = %v, want the Table I parts leading in paper order", names)
		}
	}
	if ByName("h100") == nil || ByName("h100").Name != "H100" {
		t.Error("GPU lookup must be case-insensitive")
	}
	if ByName("V100") != nil {
		t.Error("unknown GPU should return nil")
	}
	if _, err := GPUByName("V100"); err == nil || !strings.Contains(err.Error(), "H100") {
		t.Error("GPUByName error must list the registered names")
	}
	if len(All()) < 4 {
		t.Error("All() must include every registered GPU")
	}
}

// Registry lookups hand out fresh copies: mutating one must not corrupt
// later lookups (ablations tweak specs in place).
func TestRegistryReturnsFreshCopies(t *testing.T) {
	a := ByName("H100")
	a.TDPW = 1
	a.VectorTFLOPS[0] = -1
	if b := ByName("H100"); b.TDPW == 1 || b.VectorTFLOPS[0] == -1 {
		t.Error("registry entries must not alias previous lookups")
	}
	sys, err := SystemByName("H100x8")
	if err != nil {
		t.Fatal(err)
	}
	sys.GPU.TDPW = 1
	sys2, err := SystemByName("H100x8")
	if err != nil {
		t.Fatal(err)
	}
	if sys2.GPU.TDPW == 1 {
		t.Error("system lookups must not alias previous lookups")
	}
}

func TestSystemRegistryServesPaperSystems(t *testing.T) {
	want := map[string]int{"A100x4": 4, "H100x4": 4, "H100x8": 8, "MI210x4": 4, "MI250x4": 4}
	for name, n := range want {
		sys, err := SystemByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if sys.N != n || sys.NodeCount() != 1 {
			t.Errorf("%s: shape %dx%d", name, sys.N, sys.NodeCount())
		}
	}
	if _, err := SystemByName("nonesuch"); err == nil {
		t.Error("unknown system must error")
	}
	names := SystemNames()
	if len(names) < len(want) {
		t.Errorf("SystemNames() = %v", names)
	}
	if len(Systems()) != len(names) {
		t.Error("Systems() and SystemNames() must agree")
	}
}

func TestDuplicateRegistrationFails(t *testing.T) {
	if err := defaultReg.register(A100); err == nil {
		t.Error("re-registering A100 must fail")
	}
	if err := defaultReg.registerSystem(SystemH100x8); err == nil {
		t.Error("re-registering H100x8 must fail")
	}
}

func TestParseVendor(t *testing.T) {
	for s, want := range map[string]Vendor{"NVIDIA": NVIDIA, "nvidia": NVIDIA, " amd ": AMD} {
		got, err := ParseVendor(s)
		if err != nil || got != want {
			t.Errorf("ParseVendor(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseVendor("intel"); err == nil {
		t.Error("unknown vendor must error")
	}
}

func TestMultiNodeSystem(t *testing.T) {
	s := NewMultiNode(H100(), 8, 4)
	if s.Name != "H100x8x4" || s.N != 8 || s.NodeCount() != 4 || s.TotalGPUs() != 32 {
		t.Errorf("system = %+v", s)
	}
	if s.NICSpec() != DefaultNIC() {
		t.Error("multi-node systems default to the standard NIC tier")
	}
	one := NewMultiNode(H100(), 8, 1)
	if one.Name != "H100x8" || one.Nodes != 0 || one.TotalGPUs() != 8 {
		t.Errorf("one-node system = %+v", one)
	}
	if err := s.Validate(); err != nil {
		t.Error(err)
	}
}

func TestSystemCanonical(t *testing.T) {
	s := NewSystem(H100(), 4)
	s.Nodes = 1
	nic := DefaultNIC()
	s.NIC = &nic
	s.Fabric = FabricSwitched
	c := s.Canonical()
	if c.Nodes != 0 || c.NIC != nil || c.Fabric != "" {
		t.Errorf("canonical = %+v, inert fields must clear", c)
	}
	multi := NewMultiNode(MI250(), 4, 2)
	dn := DefaultNIC()
	multi.NIC = &dn
	if got := multi.Canonical(); got.NIC != nil {
		t.Error("the explicit default NIC must canonicalize to implicit")
	}
	custom := NewMultiNode(MI250(), 4, 2)
	custom.NIC = &NICSpec{BWGBs: 25, Latency: 2e-6}
	if got := custom.Canonical(); got.NIC == nil || got.NIC.BWGBs != 25 {
		t.Error("a non-default NIC must survive canonicalization")
	}
	mesh := NewSystem(H100(), 4)
	mesh.Fabric = FabricMesh
	if got := mesh.Canonical(); got.Fabric != FabricMesh {
		t.Error("a non-default fabric must survive canonicalization")
	}
}

func TestSystemValidate(t *testing.T) {
	bad := []System{
		{Name: "", GPU: H100(), N: 4},
		{Name: "x", GPU: nil, N: 4},
		{Name: "x", GPU: H100(), N: 0},
		{Name: "x", GPU: H100(), N: 4, Fabric: "torus"},
		{Name: "x", GPU: H100(), N: 4, Nodes: 2, NIC: &NICSpec{BWGBs: -1}},
	}
	for i, s := range bad {
		if s.Validate() == nil {
			t.Errorf("case %d: expected validation error for %+v", i, s)
		}
	}
}

func TestGPUSpecValidate(t *testing.T) {
	if err := H100().Validate(); err != nil {
		t.Error(err)
	}
	g := H100()
	g.MemHeadroom = 1.5
	if g.Validate() == nil {
		t.Error("headroom above 1 must fail")
	}
	g2 := A100()
	g2.VectorTFLOPS = nil
	if g2.Validate() == nil {
		t.Error("missing FP32 vector throughput must fail")
	}
}
