// Package ok is clean under every analyzer.
package ok

func Fine() int { return 1 }
