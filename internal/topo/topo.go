// Package topo models GPU interconnect fabrics. The single-node fabrics
// are NVLink with NVSwitch (Switched) and Infinity Fabric (Mesh) — Fig.
// 2(b) of the paper; Hierarchical composes an intra-node fabric with an
// inter-node NIC tier, the scale-out shape of multi-node training
// platforms. A fabric reduces to per-pair and per-ring achievable
// bandwidths, hop latencies, and a tier decomposition; those are exactly
// what the collective cost models consume.
package topo

import (
	"fmt"

	"overlapsim/internal/hw"
)

// Kind distinguishes fabric families.
type Kind int

// Fabric kinds.
const (
	// KindSwitched is NVLink + NVSwitch: every GPU pair communicates at
	// full per-GPU link bandwidth with a single switch hop.
	KindSwitched Kind = iota
	// KindMesh is Infinity Fabric: GPUs are directly attached; a pair
	// shares a subset of the GPU's links.
	KindMesh
	// KindHierarchical is a multi-node fabric: an intra-node fabric per
	// node plus an inter-node NIC tier.
	KindHierarchical
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case KindSwitched:
		return "switched"
	case KindMesh:
		return "mesh"
	case KindHierarchical:
		return "hierarchical"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Tier is one level of a fabric's ring decomposition: a collective over
// the whole fabric runs a ring phase of Ranks endpoints at this tier's
// bandwidth, paying StepLatency per ring step. Single-node fabrics have
// one tier; Hierarchical prepends the intra-node tier to the NIC tier.
type Tier struct {
	// Name labels the tier in diagnostics ("intra-node", "inter-node").
	Name string
	// Ranks is the ring fan-out at this tier (GPUs per node, then nodes).
	Ranks int
	// BW is the achievable per-direction ring bandwidth in bytes/s.
	BW float64
	// StepLatency is the latency of one ring/tree step in seconds.
	StepLatency float64
}

// Fabric is the interconnect abstraction the device and collective models
// consume. Implementations must be safe for concurrent readers: the
// simulator queries rates from every running collective.
type Fabric interface {
	// Kind reports the fabric family.
	Kind() Kind
	// N returns the number of GPUs the fabric connects (all nodes).
	N() int
	// GPU returns the device spec of the (homogeneous) endpoints.
	GPU() *hw.GPUSpec
	// RingBW returns the per-direction bandwidth in bytes/s a ring over
	// all N endpoints sustains — the bottleneck tier's rate.
	RingBW() float64
	// P2PBW returns the achievable bandwidth of a single pairwise
	// transfer between two GPUs in bytes/s.
	P2PBW(src, dst int) float64
	// PathLatency returns the setup latency of one P2P transfer between
	// two GPUs in seconds.
	PathLatency(src, dst int) float64
	// HopLatency returns the latency of one intra-node collective step in
	// seconds (the innermost tier's step latency).
	HopLatency() float64
	// Tiers returns the ring decomposition, innermost tier first. The
	// product of tier ranks is N.
	Tiers() []Tier
}

// meshP2PShare is the fraction of a GPU's aggregate Infinity Fabric
// bandwidth available on the direct link to one particular peer.
const meshP2PShare = 0.5

// ForSystem builds the fabric for a system: the intra-node kind follows
// the system's explicit fabric (falling back to the vendor default —
// switched for NVIDIA, mesh for AMD, matching the server designs of
// §II-A), wrapped in a Hierarchical fabric when the system spans nodes.
func ForSystem(sys hw.System) Fabric {
	var intra Fabric
	switch sys.FabricKind() {
	case hw.FabricMesh:
		intra = &Mesh{sys: sys}
	default:
		intra = &Switched{sys: sys}
	}
	if sys.NodeCount() <= 1 {
		return intra
	}
	return &Hierarchical{
		intra: intra,
		nodes: sys.NodeCount(),
		nic:   sys.NICSpec(),
	}
}

// Switched is an NVLink+NVSwitch-style single-node fabric: full per-GPU
// bandwidth between every pair, one switch traversal per hop.
type Switched struct {
	sys hw.System
}

// NewSwitched returns a switched fabric over the system's single node.
func NewSwitched(sys hw.System) *Switched { return &Switched{sys: sys} }

// Kind implements Fabric.
func (t *Switched) Kind() Kind { return KindSwitched }

// N implements Fabric.
func (t *Switched) N() int { return t.sys.N }

// GPU implements Fabric.
func (t *Switched) GPU() *hw.GPUSpec { return t.sys.GPU }

// RingBW implements Fabric: both single-node fabrics sustain the derated
// unidirectional link rate per ring direction.
func (t *Switched) RingBW() float64 { return t.sys.GPU.UniLinkBW() }

// P2PBW implements Fabric: a pair enjoys the GPU's full unidirectional
// bandwidth through the switch.
func (t *Switched) P2PBW(src, dst int) float64 {
	checkRank(t.sys.N, src)
	checkRank(t.sys.N, dst)
	return t.sys.GPU.UniLinkBW()
}

// PathLatency implements Fabric.
func (t *Switched) PathLatency(src, dst int) float64 { return t.HopLatency() }

// HopLatency implements Fabric: one link hop plus the switch traversal.
func (t *Switched) HopLatency() float64 { return t.sys.GPU.LinkLatency * 1.5 }

// Tiers implements Fabric.
func (t *Switched) Tiers() []Tier {
	return []Tier{{Name: "intra-node", Ranks: t.sys.N, BW: t.RingBW(), StepLatency: t.HopLatency()}}
}

// Mesh is an Infinity-Fabric-style single-node fabric: GPUs are directly
// attached, so a pair shares only a subset of the GPU's links.
type Mesh struct {
	sys hw.System
}

// NewMesh returns a mesh fabric over the system's single node.
func NewMesh(sys hw.System) *Mesh { return &Mesh{sys: sys} }

// Kind implements Fabric.
func (t *Mesh) Kind() Kind { return KindMesh }

// N implements Fabric.
func (t *Mesh) N() int { return t.sys.N }

// GPU implements Fabric.
func (t *Mesh) GPU() *hw.GPUSpec { return t.sys.GPU }

// RingBW implements Fabric: a ring uses each GPU's direct neighbor links
// at the derated unidirectional rate.
func (t *Mesh) RingBW() float64 { return t.sys.GPU.UniLinkBW() }

// P2PBW implements Fabric: a pair gets only the directly attached links.
func (t *Mesh) P2PBW(src, dst int) float64 {
	checkRank(t.sys.N, src)
	checkRank(t.sys.N, dst)
	return t.sys.GPU.UniLinkBW() * meshP2PShare
}

// PathLatency implements Fabric.
func (t *Mesh) PathLatency(src, dst int) float64 { return t.HopLatency() }

// HopLatency implements Fabric: direct links have bare latency.
func (t *Mesh) HopLatency() float64 { return t.sys.GPU.LinkLatency }

// Tiers implements Fabric.
func (t *Mesh) Tiers() []Tier {
	return []Tier{{Name: "intra-node", Ranks: t.sys.N, BW: t.RingBW(), StepLatency: t.HopLatency()}}
}

// Hierarchical composes an intra-node fabric with an inter-node NIC tier:
// nodes identical nodes, each running the intra fabric, joined by
// per-GPU scale-out NICs. Collectives decompose into an intra-node phase
// and an inter-node phase (the NCCL hierarchical algorithms), which is
// what makes inter-node bandwidth the determinant of overlap behaviour at
// scale.
type Hierarchical struct {
	intra Fabric
	nodes int
	nic   hw.NICSpec
}

// NewHierarchical composes an intra-node fabric with an inter-node NIC
// tier over the given node count. The shape arguments can come from
// user-defined hardware, so violations return errors rather than
// panicking.
func NewHierarchical(intra Fabric, nodes int, nic hw.NICSpec) (*Hierarchical, error) {
	if intra == nil {
		return nil, fmt.Errorf("topo: nil intra-node fabric")
	}
	if nodes < 2 {
		return nil, fmt.Errorf("topo: hierarchical fabric needs at least 2 nodes, have %d", nodes)
	}
	if err := nic.Validate(); err != nil {
		return nil, err
	}
	return &Hierarchical{intra: intra, nodes: nodes, nic: nic}, nil
}

// Kind implements Fabric.
func (t *Hierarchical) Kind() Kind { return KindHierarchical }

// N implements Fabric.
func (t *Hierarchical) N() int { return t.intra.N() * t.nodes }

// Nodes returns the node count.
func (t *Hierarchical) Nodes() int { return t.nodes }

// NodeSize returns the GPUs per node.
func (t *Hierarchical) NodeSize() int { return t.intra.N() }

// Intra returns the intra-node fabric.
func (t *Hierarchical) Intra() Fabric { return t.intra }

// NIC returns the inter-node tier parameters.
func (t *Hierarchical) NIC() hw.NICSpec { return t.nic }

// GPU implements Fabric.
func (t *Hierarchical) GPU() *hw.GPUSpec { return t.intra.GPU() }

// RingBW implements Fabric: a ring spanning nodes is bottlenecked by the
// slower tier — in practice the NIC.
func (t *Hierarchical) RingBW() float64 {
	return min(t.intra.RingBW(), t.nic.BW())
}

// node returns the node index of a GPU rank.
func (t *Hierarchical) node(g int) int { return g / t.intra.N() }

// P2PBW implements Fabric: pairs on the same node use the intra-node
// fabric; cross-node pairs use the NIC.
func (t *Hierarchical) P2PBW(src, dst int) float64 {
	checkRank(t.N(), src)
	checkRank(t.N(), dst)
	if t.node(src) == t.node(dst) {
		return t.intra.P2PBW(src%t.intra.N(), dst%t.intra.N())
	}
	return t.nic.BW()
}

// PathLatency implements Fabric.
func (t *Hierarchical) PathLatency(src, dst int) float64 {
	checkRank(t.N(), src)
	checkRank(t.N(), dst)
	if t.node(src) == t.node(dst) {
		return t.intra.PathLatency(src%t.intra.N(), dst%t.intra.N())
	}
	return t.nic.Latency
}

// HopLatency implements Fabric: the innermost tier's step latency.
func (t *Hierarchical) HopLatency() float64 { return t.intra.HopLatency() }

// Tiers implements Fabric: the intra-node decomposition followed by the
// inter-node tier.
func (t *Hierarchical) Tiers() []Tier {
	tiers := append([]Tier(nil), t.intra.Tiers()...)
	return append(tiers, Tier{
		Name: "inter-node", Ranks: t.nodes, BW: t.nic.BW(), StepLatency: t.nic.Latency,
	})
}

func checkRank(n, g int) {
	if g < 0 || g >= n {
		//overlaplint:allow nopanic caller contract: ranks are loop indices from executor code, not user input; out-of-range is a programming error
		panic(fmt.Sprintf("topo: GPU index %d out of range [0,%d)", g, n))
	}
}
