// Package metrics implements the paper's performance metrics (§IV-D,
// Equations 1–5): compute slowdown under overlap, the overlapped-
// computation ratio, and the three end-to-end iteration latencies
// E2E_Sequential, E2E_Overlapping and the hypothetical E2E_Ideal.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Iteration is the measurement of one training iteration on one device
// (the paper profiles per-GPU kernel times and averages over runs).
type Iteration struct {
	// E2E is the wall-clock latency of the iteration in seconds.
	E2E float64
	// ComputeKernelTime is the summed duration of compute kernels.
	ComputeKernelTime float64
	// CommKernelTime is the summed duration of communication kernels.
	CommKernelTime float64
	// OverlappedComputeTime is compute kernel time covered by
	// communication (numerator of Eq. 2).
	OverlappedComputeTime float64
	// OverlappedCommTime is communication kernel time covered by compute
	// (the hidden communication of Eq. 5).
	OverlappedCommTime float64
}

// OverlapRatio returns Eq. 2 for the iteration.
func (it Iteration) OverlapRatio() float64 {
	if it.ComputeKernelTime <= 0 {
		return 0
	}
	return it.OverlappedComputeTime / it.ComputeKernelTime
}

// Mean averages iterations element-wise; it panics on an empty slice.
func Mean(its []Iteration) Iteration {
	if len(its) == 0 {
		//overlaplint:allow nopanic caller contract: documented to panic on empty input; executors always measure at least one iteration
		panic("metrics: Mean of no iterations")
	}
	var m Iteration
	for _, it := range its {
		m.E2E += it.E2E
		m.ComputeKernelTime += it.ComputeKernelTime
		m.CommKernelTime += it.CommKernelTime
		m.OverlappedComputeTime += it.OverlappedComputeTime
		m.OverlappedCommTime += it.OverlappedCommTime
	}
	n := float64(len(its))
	m.E2E /= n
	m.ComputeKernelTime /= n
	m.CommKernelTime /= n
	m.OverlappedComputeTime /= n
	m.OverlappedCommTime /= n
	return m
}

// Characterization combines the sequential and overlapped measurements of
// one configuration into the paper's derived metrics.
type Characterization struct {
	// Sequential and Overlapped are the (averaged) per-mode measurements.
	Sequential Iteration
	Overlapped Iteration

	// ComputeSlowdown is Eq. 1: (C_overlap − C_seq) / C_seq.
	ComputeSlowdown float64
	// OverlapRatio is Eq. 2 measured on the overlapped run.
	OverlapRatio float64
	// E2EIdeal is Eq. 4: overlapped E2E minus the absolute compute
	// slowdown — concurrency without contention.
	E2EIdeal float64
	// E2ESeqDerived is Eq. 5: E2EIdeal plus the hidden communication
	// time. The directly measured sequential E2E is
	// Sequential.E2E; both are reported.
	E2ESeqDerived float64
	// SeqPenalty is how much slower sequential execution is than
	// overlapped: (E2E_seq − E2E_overlap) / E2E_overlap (the paper's
	// "sequential is on average 10.2% slower").
	SeqPenalty float64
	// IdealGap is how much slower overlapped execution is than ideal:
	// (E2E_overlap − E2E_ideal) / E2E_ideal.
	IdealGap float64
}

// Characterize derives the paper's metrics from a sequential and an
// overlapped measurement of the same configuration.
func Characterize(seq, ovl Iteration) Characterization {
	c := Characterization{Sequential: seq, Overlapped: ovl}
	if seq.ComputeKernelTime > 0 {
		c.ComputeSlowdown = (ovl.ComputeKernelTime - seq.ComputeKernelTime) / seq.ComputeKernelTime
	}
	c.OverlapRatio = ovl.OverlapRatio()
	slowAbs := ovl.ComputeKernelTime - seq.ComputeKernelTime
	c.E2EIdeal = ovl.E2E - slowAbs
	c.E2ESeqDerived = c.E2EIdeal + ovl.OverlappedCommTime
	if ovl.E2E > 0 {
		c.SeqPenalty = (seq.E2E - ovl.E2E) / ovl.E2E
	}
	if c.E2EIdeal > 0 {
		c.IdealGap = (ovl.E2E - c.E2EIdeal) / c.E2EIdeal
	}
	return c
}

// Summary aggregates a metric across many configurations (the paper's
// "average 18.9%, maximum 40.0%" style statements).
type Summary struct {
	N                int
	Mean, Min, Max   float64
	P50, P90         float64
	populationSorted []float64
}

// Summarize builds a Summary from values; NaNs are dropped.
func Summarize(values []float64) Summary {
	var vs []float64
	for _, v := range values {
		if !math.IsNaN(v) {
			vs = append(vs, v)
		}
	}
	s := Summary{N: len(vs)}
	if len(vs) == 0 {
		return s
	}
	sort.Float64s(vs)
	s.populationSorted = vs
	s.Min = vs[0]
	s.Max = vs[len(vs)-1]
	sum := 0.0
	for _, v := range vs {
		sum += v
	}
	s.Mean = sum / float64(len(vs))
	s.P50 = percentile(vs, 0.50)
	s.P90 = percentile(vs, 0.90)
	return s
}

// Percentile returns the q-quantile (0..1) of the summarized values.
func (s Summary) Percentile(q float64) float64 {
	return percentile(s.populationSorted, q)
}

func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// String formats the summary as percentages when values look like ratios.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g min=%.4g max=%.4g p50=%.4g p90=%.4g",
		s.N, s.Mean, s.Min, s.Max, s.P50, s.P90)
}
