package tp

import (
	"errors"
	"testing"

	"overlapsim/internal/exec"
	"overlapsim/internal/gpu"
	"overlapsim/internal/hw"
	"overlapsim/internal/metrics"
	"overlapsim/internal/model"
	"overlapsim/internal/precision"
	"overlapsim/internal/strategy"
)

func tinyModel() model.Config {
	return model.Config{Name: "tiny", Arch: model.GPT3, NominalParams: 1e8,
		Layers: 4, Heads: 4, Hidden: 256, FFN: 1024, Vocab: 2048, SeqLen: 128}
}

func cluster(t *testing.T, g *hw.GPUSpec, n int) *gpu.Cluster {
	t.Helper()
	cl, err := gpu.New(gpu.Config{System: hw.NewSystem(g, n)})
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

func run(t *testing.T, mode exec.Mode, n, degree int) *exec.Plan {
	t.Helper()
	cl := cluster(t, hw.H100(), n)
	plan, err := Build(cl, strategy.Params{
		Model: tinyModel(), Batch: 8, TPDegree: degree, Format: precision.FP16,
		MatrixUnits: true, Checkpoint: true, Iterations: 2, Warmup: 1, Mode: mode,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Run(); err != nil {
		t.Fatal(err)
	}
	return plan
}

func measured(t *testing.T, plan *exec.Plan) []metrics.Iteration {
	t.Helper()
	its, err := plan.MeasuredIterations()
	if err != nil {
		t.Fatal(err)
	}
	return its
}

func TestOverlappedRuns(t *testing.T) {
	its := measured(t, run(t, exec.Overlapped, 4, 4))
	if len(its) != 2 {
		t.Fatalf("measured %d iterations, want 2", len(its))
	}
	for _, it := range its {
		if it.E2E <= 0 || it.ComputeKernelTime <= 0 || it.CommKernelTime <= 0 {
			t.Errorf("degenerate iteration: %+v", it)
		}
	}
}

func TestSequentialHasNoOverlapAndIsSlower(t *testing.T) {
	seq := measured(t, run(t, exec.Sequential, 4, 4))[0]
	ovl := measured(t, run(t, exec.Overlapped, 4, 4))[0]
	if seq.OverlapRatio() > 0.01 {
		t.Errorf("sequential overlap ratio %g, want ≈0", seq.OverlapRatio())
	}
	if seq.E2E < ovl.E2E {
		t.Errorf("sequential E2E %g below overlapped %g", seq.E2E, ovl.E2E)
	}
}

// TP's collectives sit on the critical path, so its overlap ratio must
// be low — this is the worst-case scenario the related work targets. The
// backward weight-gradient window still yields nonzero overlap.
func TestOverlapIsWorstCase(t *testing.T) {
	it := measured(t, run(t, exec.Overlapped, 4, 4))[0]
	ratio := it.OverlapRatio()
	if ratio <= 0 {
		t.Error("weight-gradient window must produce some overlap")
	}
	if ratio > 0.6 {
		t.Errorf("TP overlap ratio %g too high for critical-path collectives", ratio)
	}
}

// With degree < node size, the data-parallel groups split the batch and
// add cross-group gradient all-reduces; the plan must still execute in
// both modes.
func TestHybridTPDataParallel(t *testing.T) {
	for _, mode := range []exec.Mode{exec.Overlapped, exec.Sequential} {
		its := measured(t, run(t, mode, 4, 2))
		if len(its) != 2 {
			t.Fatalf("mode %v: measured %d iterations", mode, len(its))
		}
		if its[0].CommKernelTime <= 0 {
			t.Errorf("mode %v: no communication measured", mode)
		}
	}
}

// Sharding more ways moves less compute per GPU but keeps the same
// activation collectives: degree 4 must show a worse comm:compute
// balance than degree 2 on the same node.
func TestHigherDegreeShiftsBalanceTowardComm(t *testing.T) {
	d2 := measured(t, run(t, exec.Overlapped, 4, 2))[0]
	d4 := measured(t, run(t, exec.Overlapped, 4, 4))[0]
	r2 := d2.CommKernelTime / d2.ComputeKernelTime
	r4 := d4.CommKernelTime / d4.ComputeKernelTime
	if r4 <= r2 {
		t.Errorf("comm/compute ratio should grow with degree: d2=%g d4=%g", r2, r4)
	}
}

func TestDegreeDefaultsToNode(t *testing.T) {
	cl := cluster(t, hw.H100(), 4)
	plan, err := Build(cl, strategy.Params{Model: tinyModel(), Batch: 8, Format: precision.FP16})
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestInvalidConfigs(t *testing.T) {
	cases := map[string]strategy.Params{
		"degree does not divide node":  {Model: tinyModel(), Batch: 8, TPDegree: 3},
		"degree does not divide heads": {Model: model.Config{Name: "odd", Arch: model.GPT3, Layers: 4, Heads: 6, Hidden: 252, FFN: 1024, Vocab: 2048, SeqLen: 128}, Batch: 8, TPDegree: 4},
		"batch not divisible":          {Model: tinyModel(), Batch: 9, TPDegree: 2},
		"negative degree":              {Model: tinyModel(), Batch: 8, TPDegree: -3},
		"invalid model":                {Model: model.Config{Name: "bad"}, Batch: 8},
	}
	for name, p := range cases {
		if _, err := Build(cluster(t, hw.H100(), 4), p); err == nil {
			t.Errorf("%s: Build succeeded, want error", name)
		}
	}
	if _, err := Build(cluster(t, hw.H100(), 1), strategy.Params{Model: tinyModel(), Batch: 8}); err == nil {
		t.Error("single GPU cannot tensor-parallelize")
	}
}

func TestOOMGate(t *testing.T) {
	cl := cluster(t, hw.A100(), 2)
	_, err := Build(cl, strategy.Params{
		Model: model.GPT3_13B(), Batch: 8, Format: precision.FP16, Checkpoint: true,
	})
	var oom *model.ErrOOM
	if !errors.As(err, &oom) {
		t.Fatalf("13B at TP degree 2 on 40 GB must OOM, got %v", err)
	}
	if _, err := Build(cluster(t, hw.A100(), 2), strategy.Params{
		Model: model.GPT3_13B(), Batch: 8, Format: precision.FP16, Checkpoint: true, SkipMemoryCheck: true,
	}); err != nil {
		t.Errorf("skip-check build failed: %v", err)
	}
}

func TestRegisteredWithoutCoreEdits(t *testing.T) {
	s, err := strategy.Lookup("tp")
	if err != nil {
		t.Fatal(err)
	}
	info := s.Describe()
	if info.Display != "TP" || !info.TPDegree || info.MicroBatch || info.GradAccum {
		t.Errorf("info %+v", info)
	}
	// The canonical default degree is the whole node.
	canon, ok := s.(strategy.Canonicalizer)
	if !ok {
		t.Fatal("tp must implement strategy.Canonicalizer")
	}
	if p := canon.CanonicalParams(strategy.Params{}, 8); p.TPDegree != 8 {
		t.Errorf("default degree %d, want 8", p.TPDegree)
	}
	if p := canon.CanonicalParams(strategy.Params{TPDegree: 2}, 8); p.TPDegree != 2 {
		t.Errorf("explicit degree overridden to %d", p.TPDegree)
	}
}

// Jitter-free runs must be deterministic (the registry redesign must not
// introduce scheduling nondeterminism).
func TestDeterministic(t *testing.T) {
	a := measured(t, run(t, exec.Overlapped, 4, 2))[0]
	b := measured(t, run(t, exec.Overlapped, 4, 2))[0]
	if a.E2E != b.E2E {
		t.Errorf("identical configs diverge: %g vs %g", a.E2E, b.E2E)
	}
}
