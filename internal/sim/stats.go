package sim

import "unsafe"

// Sizes used by the arena accounting. Computed once; unsafe is confined
// to this file and used only for reporting, never for access.
const (
	taskBytes = int64(unsafe.Sizeof(Task{}))
	ptrBytes  = int64(unsafe.Sizeof((*Task)(nil)))
)

// Stats is the engine's self-report: how much scheduling work a run
// performed and how the incremental hot path and the slab arenas paid
// off. It is filled by Engine.Stats after (or during) a run; all fields
// are deterministic for a given plan, so stats ride along in cached
// results without breaking byte-identical replays.
type Stats struct {
	// Tasks is the number of tasks created; TasksRetired of those
	// completed. Streams is the stream count.
	Tasks        int `json:"tasks"`
	TasksRetired int `json:"tasks_retired"`
	Streams      int `json:"streams"`

	// Epochs counts constant-rate scheduling epochs (platform rate
	// recomputations); InstantRounds the zero-duration completion rounds
	// that retire exhausted tasks without advancing time.
	Epochs        int64 `json:"epochs"`
	InstantRounds int64 `json:"instant_rounds,omitempty"`

	// StreamRechecks counts dirty-set admission rechecks — the streams
	// the incremental scheduler actually examined across all admission
	// passes. FullScanChecks is the counterfactual: the checks a
	// non-incremental scheduler rescanning every stream on every
	// admission pass would have performed. Their ratio is the dirty-set
	// win.
	StreamRechecks int64 `json:"stream_rechecks"`
	FullScanChecks int64 `json:"full_scan_checks"`

	// Admissions counts tasks moved into the running set; MaxRunning is
	// the largest concurrent running-set size any epoch saw.
	Admissions int64 `json:"admissions"`
	MaxRunning int   `json:"max_running"`

	// CollapsedClasses counts multi-member symmetry classes merged by
	// Collapse; GhostTasks the tasks whose timelines were reconstructed
	// from a class representative instead of simulated.
	CollapsedClasses int64 `json:"collapsed_classes,omitempty"`
	GhostTasks       int   `json:"ghost_tasks,omitempty"`

	// ArenaBytes is the total bytes of slab arenas allocated for tasks,
	// successor chunks and stream sets; ArenaSlabs the number of slab
	// allocations that provided them (fewer slabs per task = better
	// reuse). ReservedTasks is the capacity pre-sized via Reserve.
	ArenaBytes    int64 `json:"arena_bytes"`
	ArenaSlabs    int64 `json:"arena_slabs"`
	ReservedTasks int64 `json:"reserved_tasks,omitempty"`

	// SimTime is the final simulated clock in seconds.
	SimTime float64 `json:"sim_time_s"`
}

// Stats reports the engine's scheduling-work counters. It walks the
// task list once (to count retirements), so call it after a run, not
// per epoch.
func (e *Engine) Stats() Stats {
	retired := 0
	for _, t := range e.tasks {
		if t.st == stateDone {
			retired++
		}
	}
	return Stats{
		Tasks:            len(e.tasks),
		TasksRetired:     retired,
		Streams:          len(e.streams),
		Epochs:           e.stEpochs,
		InstantRounds:    e.stInstant,
		StreamRechecks:   e.stRechecks,
		FullScanChecks:   e.stAdmitPasses * int64(len(e.streams)),
		Admissions:       e.stAdmissions,
		MaxRunning:       e.stMaxRunning,
		CollapsedClasses: e.stCollapsed,
		GhostTasks:       e.stGhosts,
		ArenaBytes:       e.stArenaBytes,
		ArenaSlabs:       e.stSlabAllocs,
		ReservedTasks:    e.stReserved,
		SimTime:          e.now,
	}
}

// Add accumulates other into s — the aggregation sweeps and services
// use to roll per-run engine stats into totals. Gauge-like fields take
// the max; counters sum.
func (s *Stats) Add(other Stats) {
	s.Tasks += other.Tasks
	s.TasksRetired += other.TasksRetired
	s.Streams += other.Streams
	s.Epochs += other.Epochs
	s.InstantRounds += other.InstantRounds
	s.StreamRechecks += other.StreamRechecks
	s.FullScanChecks += other.FullScanChecks
	s.Admissions += other.Admissions
	s.CollapsedClasses += other.CollapsedClasses
	s.GhostTasks += other.GhostTasks
	if other.MaxRunning > s.MaxRunning {
		s.MaxRunning = other.MaxRunning
	}
	s.ArenaBytes += other.ArenaBytes
	s.ArenaSlabs += other.ArenaSlabs
	s.ReservedTasks += other.ReservedTasks
	if other.SimTime > s.SimTime {
		s.SimTime = other.SimTime
	}
}
