package hw

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// The platform registries mirror internal/strategy: GPUs and systems are
// keyed by case-insensitive name, built-ins self-register in init
// functions, and user hardware joins through Register/RegisterSystem (or
// the JSON path, Load). Builders return fresh values on every lookup so
// callers can mutate a spec for an ablation without corrupting the
// registry.

var (
	regMu      sync.RWMutex
	gpusByName = make(map[string]func() *GPUSpec)
	gpuOrder   []string
	sysByName  = make(map[string]func() System)
	sysOrder   []string
)

func regKey(name string) string {
	return strings.ToLower(strings.TrimSpace(name))
}

// Register adds a GPU builder to the registry under the spec's name,
// case-insensitively. It panics on an invalid spec or a duplicate name —
// registration happens in init functions, where a collision is a
// programming error that must fail loudly. Runtime-loaded hardware goes
// through Load, which reports errors instead.
func Register(build func() *GPUSpec) {
	if err := register(build); err != nil {
		panic(err)
	}
}

func register(build func() *GPUSpec) error {
	g := build()
	if err := g.Validate(); err != nil {
		return err
	}
	key := regKey(g.Name)
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := gpusByName[key]; dup {
		return fmt.Errorf("hw: duplicate GPU registration of %q", g.Name)
	}
	gpusByName[key] = build
	gpuOrder = append(gpuOrder, g.Name)
	return nil
}

// RegisterSystem adds a system builder to the registry under its name,
// case-insensitively. Panics on an invalid system or duplicate name, like
// Register.
func RegisterSystem(build func() System) {
	if err := registerSystem(build); err != nil {
		panic(err)
	}
}

func registerSystem(build func() System) error {
	s := build()
	if err := s.Validate(); err != nil {
		return err
	}
	key := regKey(s.Name)
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := sysByName[key]; dup {
		return fmt.Errorf("hw: duplicate system registration of %q", s.Name)
	}
	sysByName[key] = build
	sysOrder = append(sysOrder, s.Name)
	return nil
}

// ByName returns a fresh copy of the registered GPU with the given name
// (case-insensitive), or nil.
func ByName(name string) *GPUSpec {
	regMu.RLock()
	build, ok := gpusByName[regKey(name)]
	regMu.RUnlock()
	if !ok {
		return nil
	}
	return build()
}

// GPUByName is ByName with an actionable error listing the registered
// names.
func GPUByName(name string) (*GPUSpec, error) {
	if g := ByName(name); g != nil {
		return g, nil
	}
	return nil, fmt.Errorf("hw: unknown GPU %q (have %s)", name, strings.Join(Names(), ", "))
}

// Names returns every registered GPU name: the Table I built-ins in the
// paper's order first, then user registrations in registration order.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	return append([]string(nil), gpuOrder...)
}

// All returns a fresh copy of every registered GPU, in Names order.
func All() []*GPUSpec {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]*GPUSpec, 0, len(gpuOrder))
	for _, n := range gpuOrder {
		out = append(out, gpusByName[regKey(n)]())
	}
	return out
}

// SystemByName returns a fresh copy of the registered system with the
// given name (case-insensitive). The error lists the registered names.
func SystemByName(name string) (System, error) {
	regMu.RLock()
	build, ok := sysByName[regKey(name)]
	regMu.RUnlock()
	if !ok {
		return System{}, fmt.Errorf("hw: unknown system %q (have %s)",
			name, strings.Join(SystemNames(), ", "))
	}
	return build(), nil
}

// SystemNames returns the registered system names, sorted.
func SystemNames() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := append([]string(nil), sysOrder...)
	sort.Strings(out)
	return out
}

// Systems returns a fresh copy of every registered system in sorted-name
// order — what the service catalog serves.
func Systems() []System {
	regMu.RLock()
	defer regMu.RUnlock()
	names := append([]string(nil), sysOrder...)
	sort.Strings(names)
	out := make([]System, 0, len(names))
	for _, n := range names {
		out = append(out, sysByName[regKey(n)]())
	}
	return out
}
